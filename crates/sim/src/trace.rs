//! `fx8-trace`: zero-cost-when-off observability for the simulator.
//!
//! The thesis instruments the *measured* machine with a DAS 9100; this
//! module instruments the *simulator itself*, so that perf work on the
//! steppers targets measured numbers instead of guesses. Two pillars,
//! both driven by [`crate::config::TraceConfig`] and both free when
//! disabled (the cluster carries only an unarmed `Option<Box<Tracer>>`
//! and every hook sits outside the dense stepper's lane loop):
//!
//! * a **metrics registry** — monotonic counters sampled on demand into a
//!   [`MetricsSnapshot`]: cycles retired per engine (scalar / dense /
//!   fast-forward), crossbar grants per bank and retries, membus busy
//!   cycles, the CCB dispatch-to-grant [`LatencyHistogram`], and VM fault
//!   counts. Most counters already exist in the subsystems; the registry
//!   reads them at window granularity so the dense stepper's flush path
//!   stays branch-light.
//! * a **structured event trace** — a bounded drop-oldest ring of typed
//!   [`TraceEvent`] records (concurrency transitions, CCB edges, probe
//!   triggers, fast-forward and dense windows), exportable as Chrome
//!   `trace_event` JSON via [`ChromeTraceBuilder`] and loadable in
//!   Perfetto.
//!
//! Tracing is a pure observer: enabling it never changes machine
//! trajectories, RNG draws, or `state_digest()` output, and the
//! equivalence tests in `cluster.rs` hold with it on or off.

use crate::config::TraceConfig;
use crate::Cycle;
use serde::Serialize;
use std::collections::VecDeque;

/// Which load a [`TraceEvent::Mount`] installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountKind {
    /// All CEs idle.
    Idle,
    /// One CE running serial code.
    Serial,
    /// A self-scheduled concurrent loop.
    Loop,
    /// Detached (non-concurrency) jobs on individual CEs.
    Detached,
}

impl MountKind {
    /// Stable lowercase name (used as the Chrome event name suffix).
    pub fn name(self) -> &'static str {
        match self {
            MountKind::Idle => "idle",
            MountKind::Serial => "serial",
            MountKind::Loop => "loop",
            MountKind::Detached => "detached",
        }
    }
}

/// Which DAS trigger fired a [`TraceEvent::ProbeTrigger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Immediate capture (random sampling).
    Immediate,
    /// All CEs concurrent-active.
    AllCesActive,
    /// First drop below full concurrency.
    TransitionFromFull,
}

impl TriggerKind {
    /// Stable lowercase name (used as the Chrome event name suffix).
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::Immediate => "immediate",
            TriggerKind::AllCesActive => "all-active",
            TriggerKind::TransitionFromFull => "transition",
        }
    }
}

/// One structured record in the event trace.
///
/// Cycle-stamped and `Copy`; the ring buffer never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Hardware concurrency changed: `to` CEs are now CCB-active.
    Transition {
        /// Cycle of the change.
        at: Cycle,
        /// Active count before.
        from: u32,
        /// Active count after.
        to: u32,
    },
    /// A load was mounted on the cluster.
    Mount {
        /// Cycle of the mount.
        at: Cycle,
        /// Which load.
        kind: MountKind,
    },
    /// A concurrent loop started: `total` iterations self-scheduled over
    /// `lanes` worker CEs.
    LoopStart {
        /// Cycle of the mount.
        at: Cycle,
        /// Worker CEs attached to the CCB.
        lanes: u32,
        /// Total iterations in the loop.
        total: u64,
    },
    /// The CCB granted iteration `iter` to CE `ce`, `waited` cycles after
    /// the CE entered its iteration wait (dispatch-to-grant latency).
    CcbGrant {
        /// Cycle of the grant.
        at: Cycle,
        /// Receiving CE.
        ce: u32,
        /// Iteration index granted.
        iter: u64,
        /// Cycles from dispatch request to grant.
        waited: u64,
    },
    /// CE `ce` drained out of the loop: the CCB had no iterations left.
    CeDrained {
        /// Cycle of the promotion.
        at: Cycle,
        /// Drained CE.
        ce: u32,
    },
    /// The DAS monitor's trigger fired and an acquisition began.
    ProbeTrigger {
        /// Cycle of the trigger.
        at: Cycle,
        /// Which trigger condition fired.
        trigger: TriggerKind,
    },
    /// The quiescence-aware engine bulk-advanced a window.
    FastForward {
        /// First cycle of the window.
        from: Cycle,
        /// Window length.
        cycles: u64,
    },
    /// The dense SoA stepper retired a window.
    DenseWindow {
        /// First cycle of the window.
        from: Cycle,
        /// Window length.
        cycles: u64,
    },
}

impl TraceEvent {
    /// The cycle the event is stamped at (window events: their start).
    pub fn at(&self) -> Cycle {
        match *self {
            TraceEvent::Transition { at, .. }
            | TraceEvent::Mount { at, .. }
            | TraceEvent::LoopStart { at, .. }
            | TraceEvent::CcbGrant { at, .. }
            | TraceEvent::CeDrained { at, .. }
            | TraceEvent::ProbeTrigger { at, .. } => at,
            TraceEvent::FastForward { from, .. } | TraceEvent::DenseWindow { from, .. } => from,
        }
    }
}

/// Power-of-two-bucketed latency histogram (CCB dispatch-to-grant).
///
/// Bucket `i` counts samples whose value has `i` significant bits:
/// bucket 0 holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`, and
/// so on; the last bucket absorbs everything wider. Fixed-size storage so
/// recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; Self::NUM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl LatencyHistogram {
    /// Number of power-of-two buckets; covers waits up to `2^14` cycles
    /// exactly, with a catch-all final bucket.
    pub const NUM_BUCKETS: usize = 16;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; Self::NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(Self::NUM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= Self::NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Cycles retired by each stepping engine. The three engines partition
/// the timeline, so `scalar + dense + skipped == total` always holds
/// (asserted by [`EngineCycles::consistent`] and the metrics proptest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EngineCycles {
    /// Cycles stepped one at a time by `step_cycle`.
    pub scalar: u64,
    /// Cycles retired by the dense SoA batch stepper.
    pub dense: u64,
    /// Cycles bulk-advanced by quiescence-aware fast-forward.
    pub skipped: u64,
    /// All cycles the cluster has retired.
    pub total: u64,
}

impl EngineCycles {
    /// Do the per-engine counts partition the total?
    pub fn consistent(&self) -> bool {
        self.scalar + self.dense + self.skipped == self.total
    }

    /// Element-wise sum (pooling across sessions).
    pub fn add(&mut self, other: &EngineCycles) {
        self.scalar += other.scalar;
        self.dense += other.dense;
        self.skipped += other.skipped;
        self.total += other.total;
    }
}

/// One sample of the metrics registry, assembled on demand by
/// `Cluster::metrics` from the subsystems' monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Per-engine cycle split.
    pub cycles: EngineCycles,
    /// Instructions retired, summed over CEs.
    pub instrs: u64,
    /// Loop iterations completed, summed over CEs.
    pub iters_completed: u64,
    /// Crossbar grants (total).
    pub crossbar_grants: u64,
    /// Crossbar denials (retry cycles spent by CEs).
    pub crossbar_retries: u64,
    /// Crossbar grants per cache bank.
    pub crossbar_grants_by_bank: Vec<u64>,
    /// Cycles at least one memory bus was busy.
    pub membus_busy_cycles: u64,
    /// Memory-bus operations started, by kind ordinal.
    pub membus_ops_by_kind: Vec<u64>,
    /// Shared-cache CE-side accesses.
    pub cache_ce_accesses: u64,
    /// Shared-cache CE-side misses.
    pub cache_ce_misses: u64,
    /// CCB iteration grants per CE.
    pub ccb_grants_by_ce: Vec<u64>,
    /// Cycles CEs spent waiting on the serialized grant channel.
    pub ccb_grant_wait_cycles: u64,
    /// Cycles CEs spent blocked on concurrency syncs.
    pub ccb_sync_wait_cycles: u64,
    /// Dispatch-to-grant latency histogram (empty unless
    /// `TraceConfig::metrics` was on for the whole run).
    pub ccb_grant_latency: LatencyHistogram,
    /// Demand faults taken by user pages.
    pub vm_user_faults: u64,
    /// Demand faults taken by system pages.
    pub vm_system_faults: u64,
    /// Trace events recorded (0 when the event trace is off).
    pub events_recorded: u64,
    /// Trace events dropped by the bounded ring.
    pub events_dropped: u64,
}

/// The armed tracer carried by a cluster when any `TraceConfig` knob is
/// on. Crate-internal: the cluster calls the hooks, consumers read the
/// results through `Cluster::metrics` / `Cluster::trace_events`.
#[derive(Debug, Clone)]
pub(crate) struct Tracer {
    /// Metrics registry armed (grant-latency histogram records).
    pub(crate) metrics_on: bool,
    /// Event ring armed.
    pub(crate) events_on: bool,
    /// Last concurrency level recorded, for transition edges.
    pub(crate) last_active: u32,
    /// Cycle each CE last entered its iteration wait.
    pub(crate) iter_wait_since: [Cycle; crate::probe::MAX_CES],
    /// Dispatch-to-grant latency samples.
    pub(crate) grant_latency: LatencyHistogram,
    ring: VecDeque<TraceEvent>,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

impl Tracer {
    /// Arm a tracer for the given knobs. The ring is allocated up front
    /// at full capacity so steady-state tracing never allocates.
    pub(crate) fn new(cfg: &TraceConfig) -> Self {
        let cap = if cfg.events { cfg.event_capacity } else { 0 };
        Tracer {
            metrics_on: cfg.metrics,
            events_on: cfg.events,
            last_active: 0,
            iter_wait_since: [0; crate::probe::MAX_CES],
            grant_latency: LatencyHistogram::new(),
            ring: VecDeque::with_capacity(cap),
            cap,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Append an event, dropping the oldest record when full.
    #[inline]
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if !self.events_on {
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
        self.recorded += 1;
    }

    /// Snapshot the retained events in record order.
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().copied().collect()
    }

    /// Events appended over the tracer's lifetime.
    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by the bounded ring.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Virtual thread lanes the Chrome exporter sorts events onto.
mod tid {
    /// Machine-level lane: concurrency counter, mounts, loop edges.
    pub const MACHINE: u32 = 0;
    /// Stepping-engine lane: fast-forward and dense window spans.
    pub const ENGINE: u32 = 1;
    /// CCB lane: iteration grants and drains.
    pub const CCB: u32 = 2;
    /// Monitor lane: probe triggers.
    pub const MONITOR: u32 = 3;
}

/// Streaming builder for Chrome `trace_event` JSON (the "JSON array
/// format" with a `traceEvents` wrapper, loadable in Perfetto and
/// `chrome://tracing`).
///
/// Each call to [`ChromeTraceBuilder::add_process`] emits one session's
/// events under its own `pid`, with named thread lanes for the machine,
/// the stepping engines, the CCB, and the monitor. Timestamps convert
/// cycles to microseconds via the machine's `ns_per_cycle`.
#[derive(Debug)]
pub struct ChromeTraceBuilder {
    out: String,
    first: bool,
}

impl ChromeTraceBuilder {
    /// Start an empty trace document.
    pub fn new() -> Self {
        ChromeTraceBuilder {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    fn raw(&mut self, record: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(record);
    }

    fn meta(&mut self, pid: u32, tid: u32, what: &str, name: &str) {
        self.raw(&format!(
            "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts: f64, args: &str) {
        self.raw(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
    }

    /// Emit one session's events as process `pid` named `name`.
    pub fn add_process(&mut self, pid: u32, name: &str, events: &[TraceEvent], ns_per_cycle: u64) {
        self.meta(pid, tid::MACHINE, "process_name", name);
        self.meta(pid, tid::MACHINE, "thread_name", "machine");
        self.meta(pid, tid::ENGINE, "thread_name", "engine");
        self.meta(pid, tid::CCB, "thread_name", "ccb");
        self.meta(pid, tid::MONITOR, "thread_name", "monitor");
        let us = |c: Cycle| c as f64 * ns_per_cycle as f64 / 1000.0;
        for ev in events {
            match *ev {
                TraceEvent::Transition { at, to, .. } => {
                    self.raw(&format!(
                        "{{\"name\":\"concurrency\",\"ph\":\"C\",\"ts\":{},\
                         \"pid\":{pid},\"tid\":{},\"args\":{{\"active\":{to}}}}}",
                        us(at),
                        tid::MACHINE,
                    ));
                }
                TraceEvent::Mount { at, kind } => {
                    let name = format!("mount:{}", kind.name());
                    self.instant(pid, tid::MACHINE, &name, us(at), "");
                }
                TraceEvent::LoopStart { at, lanes, total } => {
                    let args = format!("\"lanes\":{lanes},\"total\":{total}");
                    self.instant(pid, tid::MACHINE, "loop:start", us(at), &args);
                }
                TraceEvent::CcbGrant {
                    at,
                    ce,
                    iter,
                    waited,
                } => {
                    let args = format!("\"ce\":{ce},\"iter\":{iter},\"waited\":{waited}");
                    self.instant(pid, tid::CCB, "ccb:grant", us(at), &args);
                }
                TraceEvent::CeDrained { at, ce } => {
                    let args = format!("\"ce\":{ce}");
                    self.instant(pid, tid::CCB, "ccb:drained", us(at), &args);
                }
                TraceEvent::ProbeTrigger { at, trigger } => {
                    let name = format!("probe:{}", trigger.name());
                    self.instant(pid, tid::MONITOR, &name, us(at), "");
                }
                TraceEvent::FastForward { from, cycles } => {
                    self.raw(&format!(
                        "{{\"name\":\"fast-forward\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{pid},\"tid\":{},\
                         \"args\":{{\"cycles\":{cycles}}}}}",
                        us(from),
                        cycles as f64 * ns_per_cycle as f64 / 1000.0,
                        tid::ENGINE,
                    ));
                }
                TraceEvent::DenseWindow { from, cycles } => {
                    self.raw(&format!(
                        "{{\"name\":\"dense\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{pid},\"tid\":{},\
                         \"args\":{{\"cycles\":{cycles}}}}}",
                        us(from),
                        cycles as f64 * ns_per_cycle as f64 / 1000.0,
                        tid::ENGINE,
                    ));
                }
            }
        }
    }

    /// Close the document and return the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push_str("]}");
        self.out
    }
}

impl Default for ChromeTraceBuilder {
    fn default() -> Self {
        ChromeTraceBuilder::new()
    }
}

/// One-shot export of a single event stream (process 0, named `fx8`).
pub fn chrome_trace_json(events: &[TraceEvent], ns_per_cycle: u64) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.add_process(0, "fx8", events, ns_per_cycle);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_significant_bits() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[LatencyHistogram::NUM_BUCKETS - 1], 1); // 2^20
        assert_eq!(h.max, 1 << 20);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let cfg = TraceConfig {
            metrics: false,
            events: true,
            event_capacity: 4,
        };
        let mut t = Tracer::new(&cfg);
        for i in 0..10u64 {
            t.push(TraceEvent::Transition {
                at: i,
                from: 0,
                to: 1,
            });
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6);
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].at(), 6, "oldest records evicted first");
        assert_eq!(evs[3].at(), 9);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(&TraceConfig::metrics_only());
        t.push(TraceEvent::Mount {
            at: 1,
            kind: MountKind::Serial,
        });
        assert_eq!(t.recorded(), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let events = [
            TraceEvent::Mount {
                at: 0,
                kind: MountKind::Loop,
            },
            TraceEvent::Transition {
                at: 5,
                from: 0,
                to: 8,
            },
            TraceEvent::DenseWindow {
                from: 10,
                cycles: 100,
            },
            TraceEvent::CcbGrant {
                at: 110,
                ce: 3,
                iter: 7,
                waited: 12,
            },
            TraceEvent::ProbeTrigger {
                at: 120,
                trigger: TriggerKind::AllCesActive,
            },
            TraceEvent::FastForward {
                from: 130,
                cycles: 50,
            },
        ];
        let json = chrome_trace_json(&events, 170);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("probe:all-active"));
        // Balanced braces (cheap structural sanity; the full parse-back
        // round trip lives in tests/observability.rs).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn engine_cycles_consistency() {
        let e = EngineCycles {
            scalar: 10,
            dense: 20,
            skipped: 30,
            total: 60,
        };
        assert!(e.consistent());
        let mut sum = e;
        sum.add(&e);
        assert_eq!(sum.total, 120);
        assert!(sum.consistent());
    }
}
