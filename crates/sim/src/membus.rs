//! Memory buses and interleaved main memory.
//!
//! "Traffic between caches and main memory is over two 64-bit wide data
//! busses... The main memory has an interleaving factor of four"
//! (Appendix C). A transaction picks the earliest-free bus, waits for its
//! target memory module, transfers its line, and completes after the module
//! latency. The per-cycle opcode visible to the monitor's memory-bus probe
//! is the opcode of the transaction *starting* in that cycle (at most one
//! start per cycle — the arbitration the probe decodes).

use crate::addr::LineId;
use crate::opcode::MemBusOp;
use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A scheduled transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Cycle the transaction wins the bus.
    pub start: Cycle,
    /// Cycle its data is available (what a stalled CE waits for).
    pub complete: Cycle,
    /// Bus it was routed to.
    pub bus: usize,
}

/// Utilization counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBusStats {
    /// Transactions scheduled, by opcode index.
    pub by_op: [u64; MemBusOp::COUNT],
    /// Total bus-occupied cycles across all buses.
    pub busy_cycles: u64,
}

/// The memory-bus subsystem.
#[derive(Debug)]
pub struct MemBusSystem {
    /// Per-bus earliest free cycle.
    bus_free: Vec<Cycle>,
    /// Per-memory-module earliest free cycle.
    module_free: Vec<Cycle>,
    latency: u64,
    transfer: u64,
    /// Opcode that starts at a given cycle (for the probe), sorted by
    /// cycle. Transactions schedule in near-monotonic order and the probe
    /// garbage-collects from the front, so a ring buffer reaches a small
    /// steady-state capacity and stays allocation-free — a `BTreeMap`
    /// here would allocate nodes on the per-cycle path.
    starts: VecDeque<(Cycle, MemBusOp)>,
    stats: MemBusStats,
}

impl MemBusSystem {
    /// Build with `buses` buses, `modules` memory modules, module `latency`
    /// and per-line `transfer` cycles.
    pub fn new(buses: usize, modules: usize, latency: u64, transfer: u64) -> Self {
        assert!(buses > 0 && modules > 0);
        MemBusSystem {
            bus_free: vec![0; buses],
            module_free: vec![0; modules],
            latency,
            transfer,
            starts: VecDeque::with_capacity(16),
            stats: MemBusStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &MemBusStats {
        &self.stats
    }

    /// Schedule a transaction no earlier than `now`. Line transfers
    /// (fetch / write-back) occupy a bus for the transfer time and their
    /// module for latency; coherence-only traffic is a short address cycle.
    pub fn schedule(&mut self, now: Cycle, op: MemBusOp, line: LineId) -> Ticket {
        debug_assert!(op != MemBusOp::Idle, "cannot schedule an idle transaction");
        let module = (line.0 % self.module_free.len() as u64) as usize;
        // Earliest-free bus.
        let (bus, bus_free) = self
            .bus_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("at least one bus");
        let (occupy, complete_after) = match op {
            MemBusOp::Coherence => (1, 2),
            MemBusOp::Fetch | MemBusOp::WriteBack | MemBusOp::IpTraffic => {
                (self.transfer, self.latency + self.transfer)
            }
            MemBusOp::Idle => unreachable!(),
        };
        let start = now.max(bus_free).max(self.module_free[module]);
        // Only one transaction may *start* per cycle machine-wide: the
        // probe decodes a single start opcode. Push to the next free slot.
        let (start, slot) = self.next_free_start(start);
        self.bus_free[bus] = start + occupy;
        self.module_free[module] = start + complete_after;
        self.starts.insert(slot, (start, op));
        self.stats.by_op[op.index()] += 1;
        self.stats.busy_cycles += occupy;
        Ticket {
            start,
            complete: start + complete_after,
            bus,
        }
    }

    /// First free start cycle at or after `t`, with the sorted insertion
    /// slot for it. Occupied cycles form a contiguous run from the
    /// insertion point, so one binary search plus a forward walk finds it.
    fn next_free_start(&self, mut t: Cycle) -> (Cycle, usize) {
        // Fast path: `t` lies past every recorded start (the common case
        // for a request landing on an idle bus), so the insertion slot is
        // the back of the ring and no binary search is needed.
        match self.starts.back() {
            Some(&(c, _)) if c >= t => {}
            _ => return (t, self.starts.len()),
        }
        let mut slot = self.starts.partition_point(|&(c, _)| c < t);
        while self.starts.get(slot).is_some_and(|&(c, _)| c == t) {
            t += 1;
            slot += 1;
        }
        (t, slot)
    }

    /// Drop recorded starts older than `now` (the probe never looks back).
    /// The quiet stepping path calls this directly so the record stays
    /// bounded even when no probe reads it.
    pub fn gc(&mut self, now: Cycle) {
        while self.starts.front().is_some_and(|&(t, _)| t < now) {
            self.starts.pop_front();
        }
    }

    /// The opcode the memory-bus probe sees at `now`; garbage-collects
    /// entries older than `now`.
    pub fn probe_op(&mut self, now: Cycle) -> MemBusOp {
        self.gc(now);
        match self.starts.front() {
            Some(&(t, op)) if t == now => op,
            _ => MemBusOp::Idle,
        }
    }

    /// Whether any bus is occupied at `now` (for utilization assertions).
    pub fn any_busy(&self, now: Cycle) -> bool {
        self.bus_free.iter().any(|&t| t > now)
    }

    /// The one-start-per-cycle arbitration rule the probe decodes: the
    /// start record must be strictly increasing in cycle. Allocation-free.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_check(&self) -> Result<(), String> {
        let mut prev: Option<Cycle> = None;
        for &(t, _) in &self.starts {
            if let Some(p) = prev {
                if t <= p {
                    return Err(format!("start records out of order: cycle {p} then {t}"));
                }
            }
            prev = Some(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MemBusSystem {
        MemBusSystem::new(2, 4, 10, 4)
    }

    #[test]
    fn single_fetch_completes_after_latency_and_transfer() {
        let mut m = bus();
        let t = m.schedule(100, MemBusOp::Fetch, LineId(0));
        assert_eq!(t.start, 100);
        assert_eq!(t.complete, 114);
    }

    #[test]
    fn two_buses_overlap_two_transactions() {
        let mut m = bus();
        let a = m.schedule(0, MemBusOp::Fetch, LineId(0));
        let b = m.schedule(0, MemBusOp::Fetch, LineId(1));
        // Different modules, different buses: starts staggered only by the
        // one-start-per-cycle rule.
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 1);
        assert_ne!(a.bus, b.bus);
    }

    #[test]
    fn third_transaction_queues_behind_busy_buses() {
        let mut m = bus();
        m.schedule(0, MemBusOp::Fetch, LineId(0));
        m.schedule(0, MemBusOp::Fetch, LineId(1));
        let c = m.schedule(0, MemBusOp::Fetch, LineId(2));
        // Both buses occupied for 4 cycles from their starts (0 and 1).
        assert!(c.start >= 4, "third fetch must wait for a bus: {c:?}");
    }

    #[test]
    fn same_module_serializes_on_module_latency() {
        let mut m = bus();
        let a = m.schedule(0, MemBusOp::Fetch, LineId(0));
        // Same module (line 4 % 4 == 0), other bus free.
        let b = m.schedule(0, MemBusOp::Fetch, LineId(4));
        assert!(
            b.start >= a.complete,
            "module must finish first: {a:?} {b:?}"
        );
    }

    #[test]
    fn probe_sees_start_opcode_then_idle() {
        let mut m = bus();
        m.schedule(5, MemBusOp::WriteBack, LineId(3));
        assert_eq!(m.probe_op(4), MemBusOp::Idle);
        assert_eq!(m.probe_op(5), MemBusOp::WriteBack);
        assert_eq!(m.probe_op(6), MemBusOp::Idle);
    }

    #[test]
    fn probe_gc_is_monotonic() {
        let mut m = bus();
        m.schedule(1, MemBusOp::Fetch, LineId(0));
        m.schedule(3, MemBusOp::Coherence, LineId(1));
        assert_eq!(m.probe_op(1), MemBusOp::Fetch);
        assert_eq!(m.probe_op(2), MemBusOp::Idle);
        assert_eq!(m.probe_op(3), MemBusOp::Coherence);
    }

    /// The bulk stepper replaces the per-cycle `gc(t)` of a skipped window
    /// with one `gc(window_end)`: gc is a monotone threshold-pop from the
    /// sorted front and `next_free_start`'s partition point never lands on
    /// stale (past) entries, so schedules, stats, and the surviving start
    /// record are identical either way.
    #[test]
    fn deferred_gc_matches_per_cycle_gc() {
        let run = |deferred: bool| {
            let mut m = MemBusSystem::new(2, 4, 10, 4);
            let mut tickets = Vec::new();
            for t in 0..40u64 {
                if t % 3 == 0 {
                    tickets.push(m.schedule(t, MemBusOp::IpTraffic, LineId(t)));
                }
                if !deferred {
                    m.gc(t);
                }
            }
            if deferred {
                m.gc(39);
            }
            (tickets, m.stats().clone(), m.probe_op(40))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn coherence_is_short() {
        let mut m = bus();
        let t = m.schedule(0, MemBusOp::Coherence, LineId(9));
        assert_eq!(t.complete - t.start, 2);
    }

    #[test]
    fn stats_count_ops_and_busy_cycles() {
        let mut m = bus();
        m.schedule(0, MemBusOp::Fetch, LineId(0));
        m.schedule(0, MemBusOp::IpTraffic, LineId(1));
        m.schedule(20, MemBusOp::Coherence, LineId(2));
        let s = m.stats();
        assert_eq!(s.by_op[MemBusOp::Fetch.index()], 1);
        assert_eq!(s.by_op[MemBusOp::IpTraffic.index()], 1);
        assert_eq!(s.by_op[MemBusOp::Coherence.index()], 1);
        assert_eq!(s.busy_cycles, 4 + 4 + 1);
    }

    #[test]
    fn starts_are_unique_cycles() {
        let mut m = MemBusSystem::new(4, 8, 10, 4);
        let mut starts = Vec::new();
        for i in 0..8 {
            starts.push(m.schedule(0, MemBusOp::Fetch, LineId(i)).start);
        }
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            starts.len(),
            "duplicate start cycles: {starts:?}"
        );
    }
}
