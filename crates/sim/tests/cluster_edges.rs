//! Edge cases of the cluster's mounting and scheduling machinery.

use fx8_sim::addr::VAddr;
use fx8_sim::cluster::LoadKind;
use fx8_sim::stream::{CodeRegion, LoopBody, Op, SerialCode, StridedLoop, StridedSerial};
use fx8_sim::{CeId, Cluster, MachineConfig};

fn serial(asid: u16) -> Box<dyn SerialCode> {
    Box::new(StridedSerial::new(
        CodeRegion {
            base: VAddr::new(asid, 0),
            footprint_bytes: 256,
            bytes_per_instr: 4,
        },
        VAddr::new(asid, 0x10_0000),
        8,
        2048,
        4,
    ))
}

fn body(asid: u16) -> Box<dyn LoopBody> {
    Box::new(StridedLoop {
        region: CodeRegion {
            base: VAddr::new(asid, 0),
            footprint_bytes: 256,
            bytes_per_instr: 4,
        },
        src: VAddr::new(asid, 0x20_0000),
        dst: VAddr::new(asid, 0x30_0000),
        elem: 8,
        compute: 60,
    })
}

fn quiet_cluster() -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), 7);
    c.set_ip_intensity(0.0);
    c
}

#[test]
fn serial_mount_avoids_detached_ce() {
    let mut c = quiet_cluster();
    c.mount_detached(0, serial(9), 9);
    // Request CE 0 explicitly: the cluster must pick a free CE instead.
    c.mount_serial(serial(1), 1, Some(0));
    let words = c.capture(200);
    assert!(
        words.iter().all(|w| !w.is_active(0)),
        "detached CE0 must stay non-CCB-active"
    );
    assert!(
        words.iter().any(|w| w.active_count() == 1),
        "serial section runs elsewhere"
    );
}

#[test]
#[should_panic(expected = "no free CE")]
fn mounting_with_every_ce_detached_panics() {
    let mut c = quiet_cluster();
    for ce in 0..8 {
        c.mount_detached(ce, serial(9), 9);
    }
    c.mount_serial(serial(1), 1, None);
}

#[test]
fn empty_tail_loop_promotes_to_serial_immediately() {
    let mut c = quiet_cluster();
    // first == total: nothing left to run; the machine must not wedge.
    c.mount_loop(body(1), 40, 40, serial(1), 1);
    for _ in 0..2_000 {
        c.step();
        if c.load_kind() == LoadKind::Drained {
            break;
        }
    }
    assert_eq!(c.load_kind(), LoadKind::Drained);
    let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
    assert_eq!(done, 0, "no iterations remained to execute");
}

#[test]
fn single_iteration_loop_runs_on_one_ce() {
    let mut c = quiet_cluster();
    c.mount_loop(body(1), 0, 1, serial(1), 1);
    for _ in 0..10_000 {
        c.step();
        if c.load_kind() == LoadKind::Drained {
            break;
        }
    }
    assert_eq!(c.load_kind(), LoadKind::Drained);
    let per_ce: Vec<u64> = (0..8).map(|i| c.ce_stats(i).iters_completed).collect();
    assert_eq!(per_ce.iter().sum::<u64>(), 1);
}

#[test]
fn clear_detached_frees_the_ce_for_cluster_work() {
    let mut c = quiet_cluster();
    c.mount_detached(3, serial(9), 9);
    c.clear_detached(3);
    c.mount_loop(body(1), 0, 100_000, serial(1), 1);
    c.run(500);
    let w = c.step();
    assert!(
        w.is_active(3),
        "CE3 rejoins the cluster after clear_detached"
    );
}

#[test]
fn remount_replaces_previous_work_cleanly() {
    let mut c = quiet_cluster();
    c.mount_loop(body(1), 0, 100_000, serial(1), 1);
    c.run(2_000);
    // Replace mid-flight with a serial section: all loop state must drop.
    c.mount_serial(serial(2), 2, Some(5));
    let words = c.capture(300);
    for w in &words {
        assert!(w.active_count() <= 1, "loop must be fully unmounted: {w:?}");
    }
    assert_eq!(c.load_kind(), LoadKind::Serial);
}

#[test]
fn mount_idle_stops_everything_but_detached() {
    let mut c = quiet_cluster();
    c.mount_detached(6, serial(9), 9);
    c.mount_loop(body(1), 0, 100_000, serial(1), 1);
    c.run(1_000);
    c.mount_idle();
    let words = c.capture(300);
    for w in &words {
        assert_eq!(w.active_count(), 0);
    }
    // The detached process still computes (bus activity on CE6 possible).
    assert!(c.ce_stats(6).instrs > 0);
}

#[test]
fn sync_ops_outside_a_loop_do_not_wedge_serial_code() {
    // A malformed stream issuing sync ops while mounted serially: the CCB
    // has no loop, sync_reached is tolerant, and the machine keeps going.
    struct Weird(CodeRegion);
    impl SerialCode for Weird {
        fn code(&self) -> CodeRegion {
            self.0
        }
        fn gen_block(&mut self, _ce: CeId, out: &mut Vec<Op>) {
            out.push(Op::PostSync(5));
            out.push(Op::AwaitSync(3));
            out.push(Op::Compute(4));
        }
    }
    let mut c = quiet_cluster();
    let region = CodeRegion {
        base: VAddr::new(1, 0),
        footprint_bytes: 128,
        bytes_per_instr: 4,
    };
    c.mount_serial(Box::new(Weird(region)), 1, None);
    c.run(2_000);
    assert!(
        c.ce_stats(0).instrs > 100,
        "serial stream must keep retiring"
    );
}

#[test]
fn loop_after_loop_reuses_warm_caches() {
    let mut c = quiet_cluster();
    c.mount_loop(body(1), 0, 2_000, serial(1), 1);
    c.run(20_000);
    let misses_first = c.cache_stats().ce_misses;
    // Remount the same loop: the data is already cached.
    c.mount_loop(body(1), 0, 2_000, serial(1), 1);
    c.run(20_000);
    let misses_second = c.cache_stats().ce_misses - misses_first;
    assert!(
        misses_second * 2 < misses_first.max(1),
        "second pass should be mostly warm: {misses_first} then {misses_second}"
    );
}
